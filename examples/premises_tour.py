#!/usr/bin/env python3
"""A tour of the paper's premises (§2) as executable analyses.

Each premise is a design observation; the library turns each into a
function the design team or administrator can run.  This example walks
all of them over concrete data.

Run:  python examples/premises_tour.py
"""

import datetime as dt

from repro.core.mapping import UserQualityStandard, timeliness_from_age
from repro.core.premises import (
    classify_attribute_role,
    heterogeneity_profile,
    heterogeneity_spread,
    non_orthogonality_report,
    single_user_variation_report,
    user_standards_report,
)
from repro.experiments.scenarios import customer_database, trading_ticks
from repro.tagging.aggregate import RelationTags, completeness_hint
from repro.tagging.indicators import IndicatorValue

MINUTE = 1 / (24 * 60)


def main() -> None:
    # -- Premise 1.1: application vs quality attributes ---------------------
    print("Premise 1.1 — which role does an attribute play?")
    for name, doc in [
        ("teller_name", "bank teller who performed the transaction"),
        ("share_price", ""),
        ("entry_timestamp", "when the record was keyed in"),
        ("address", ""),
    ]:
        print(f"  {name:<16} -> {classify_attribute_role(name, doc)}")
    print()

    # -- Premise 1.2: non-orthogonality ---------------------------------------
    chosen = ["timeliness", "volatility", "currency", "cost", "credibility"]
    pairs = non_orthogonality_report(chosen)
    print(f"Premise 1.2 — related pairs among {chosen}:")
    for a, b in pairs:
        print(f"  {a} ~ {b}")
    print()

    # -- Premise 1.3: heterogeneity hierarchy -----------------------------------
    world, _, customers = customer_database(
        n_companies=100, seed=31, simulated_days=120
    )

    def source_trust(cell):
        source = cell.tag_value("source")
        if source is None:
            return None
        return {"acct'g": 1.0, "estimate": 0.2}.get(source, 0.5)

    profile = heterogeneity_profile(
        {"customer": customers}, source_trust, "source trust"
    )
    spread = heterogeneity_spread(profile)
    columns = profile["relations"]["customer"]["columns"]
    print("Premise 1.3 — quality differs across the hierarchy:")
    for column, score in sorted(columns.items()):
        shown = "n/a" if score is None else f"{score:.2f}"
        print(f"  customer.{column}: trust={shown}")
    print(f"  column spread: {spread['column_spread']:.2f}")
    # ... and at the aggregate (table) level, per the §1.2 footnote:
    tags = RelationTags(
        "customer", [IndicatorValue("population_method", "purchased list")]
    )
    print(
        f"  table-level hint: population_method="
        f"{tags.value('population_method')!r} -> completeness ≈ "
        f"{completeness_hint(tags)}"
    )
    print()

    # -- Premises 2.1/2.2: user-specific standards ---------------------------------
    ticks = trading_ticks(n_ticks=500, seed=19)
    investor = UserQualityStandard(
        "investor",
        mappings=[timeliness_from_age(10 * MINUTE)],
        acceptance={"timeliness": lambda t: t},
    )
    trader = UserQualityStandard(
        "trader",
        mappings=[timeliness_from_age(1 * MINUTE)],
        acceptance={"timeliness": lambda t: t},
    )
    print("Premises 2.1/2.2 — same ticks, different standards:")
    for entry in user_standards_report([investor, trader], ticks, "price"):
        print(
            f"  {entry['user']}: evaluates {entry['parameters']}, "
            f"accepts {entry['acceptance_rate']:.1%}"
        )
    print()

    # -- Premise 3: one user, different standards across data ------------------------
    analyst_strict = UserQualityStandard(
        "analyst",
        mappings=[timeliness_from_age(5 * MINUTE)],
        acceptance={"timeliness": lambda t: t},
    )
    analyst_loose = UserQualityStandard(
        "analyst",
        mappings=[timeliness_from_age(1.0)],
        acceptance={"timeliness": lambda t: t},
    )
    report = single_user_variation_report(
        {"price": analyst_strict}, ticks
    ) | single_user_variation_report({"price": analyst_loose}, ticks)
    # Render both standards explicitly for the comparison.
    strict_rate = analyst_strict.acceptance_rate(ticks, "price")
    loose_rate = analyst_loose.acceptance_rate(ticks, "price")
    print("Premise 3 — one analyst, two standards for different tasks:")
    print(f"  execution prices (≤5 min): accepts {strict_rate:.1%}")
    print(f"  end-of-day report (≤1 day): accepts {loose_rate:.1%}")


if __name__ == "__main__":
    main()
