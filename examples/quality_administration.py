#!/usr/bin/env python3
"""A day in the life of the data quality administrator (§4).

The administrator "monitors, controls, or reports on the quality of
information".  This example walks the whole toolkit over a simulated
manufactured customer database:

1. requirement monitoring against the design's quality schema;
2. data-entry controls rejecting bad submissions at the front end;
3. SPC: a collection device degrades and the p-chart raises an alarm;
4. the electronic trail: tracing an erred transaction end to end;
5. inspection: double entry and certification;
6. duplicate detection via record linkage.

Run:  python examples/quality_administration.py
"""

import datetime as dt

from repro.core import DataQualityModeling
from repro.core.terminology import QualityIndicatorSpec
from repro.er.model import Entity, ERAttribute, ERSchema
from repro.linkage.comparators import jaro_winkler
from repro.linkage.dedup import DuplicateFinder
from repro.linkage.fellegi_sunter import FellegiSunterModel, FieldModel
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import AttributeSpec, World, integer_step
from repro.quality.admin import DataQualityAdministrator
from repro.quality.controls import EntryController, RangeRule, RequiredFieldRule
from repro.quality.inspection import CertificationLog, DoubleEntry
from repro.quality.spc import p_chart
from repro.relational.schema import schema


def design_quality_schema():
    er = ERSchema("crm")
    er.add_entity(
        Entity(
            "customer",
            [
                ERAttribute("co_name", "STR"),
                ERAttribute("address", "STR"),
                ERAttribute("employees", "INT"),
            ],
            key=["co_name"],
        )
    )
    modeling = DataQualityModeling()
    app_view = modeling.step1(er, "corporate customers")
    param_view = modeling.step2(
        app_view,
        [
            (("customer", "address"), "currency", ""),
            (("customer", "address"), "source_credibility", ""),
            (("customer", "employees"), "accuracy", ""),
        ],
    )
    quality_view = modeling.step3(
        param_view,
        decisions={
            (("customer", "address"), "currency"): [
                QualityIndicatorSpec("creation_time", "DATE")
            ],
            (("customer", "address"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
            (("customer", "employees"), "accuracy"): [
                QualityIndicatorSpec("collection_method")
            ],
        },
        auto=False,
    )
    return modeling.step4([quality_view])


def main() -> None:
    # -- the manufactured database -----------------------------------------
    companies = make_companies(300, seed=77)
    world = World(
        dt.date(1991, 1, 1),
        companies,
        specs=[AttributeSpec("employees", 0.01, integer_step(40))],
        seed=77,
    )
    world.advance(180)
    device = CollectionMethod("voice_decoder", 0.02, seed=77)
    pipeline = ManufacturingPipeline(
        world,
        schema(
            "customer",
            [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
            key=["co_name"],
        ),
        "co_name",
    )
    pipeline.assign(
        "address",
        DataSource("acct'g", world, error_rate=0.02, seed=77),
        device,
    )
    pipeline.assign(
        "employees",
        DataSource("estimate", world, error_rate=0.25, latency_days=45, seed=78),
        device,
    )
    keys = list(world.keys)
    relation = pipeline.manufacture(keys=keys[:200])
    device.degrade(0.45)  # the decoder starts failing
    late = pipeline.manufacture(keys=keys[200:])
    for row in late:
        relation.insert(row)

    # -- 1. requirement monitoring -------------------------------------------
    quality_schema = design_quality_schema()
    admin = DataQualityAdministrator(quality_schema, trail=pipeline.trail)
    report = admin.monitor(
        {"customer": relation},
        today=world.today,
        truth=world.truth(),
        key_columns={"customer": "co_name"},
    )
    print(report.render())
    print()

    # -- 2. data-entry controls ------------------------------------------------
    controller = EntryController(
        [
            RequiredFieldRule("required_identity", ["co_name"]),
            RangeRule("employees_positive", "employees", low=1, high=2_000_000),
        ]
    )
    submissions = [
        {"co_name": "Keystone Group", "employees": 410},
        {"co_name": None, "employees": 10},
        {"co_name": "Ember Ltd", "employees": -3},
    ]
    for record in submissions:
        accepted, violations = controller.submit(record)
        verdict = "accepted" if accepted else "REJECTED"
        print(f"entry {record!r}: {verdict}")
        for violation in violations:
            print(f"    {violation.rule}: {violation.message}")
    print(controller.report())
    print()

    # -- 3. SPC alarm ---------------------------------------------------------------
    counts, sizes = pipeline.defect_counts_by_batch(50)
    chart = p_chart(counts, sizes, baseline_samples=8)
    print(chart.render())
    signal = chart.first_signal_index()
    print(
        f"SPC: first out-of-control batch = {signal} "
        f"(device degraded at batch {200 * 2 // 50})"
    )
    print()

    # -- 4. the electronic trail -------------------------------------------------------
    erred = next(r for r in pipeline.manufactured if r.erroneous)
    trace = admin.trace("customer", (erred.key,))
    print(f"Tracing erred datum {erred.key!r} ({erred.attribute}):")
    for event in trace["events"]:
        print(f"  {event.summary()}")
    print()

    # -- 5. inspection: double entry + certification --------------------------------------
    double_entry = DoubleEntry()
    double_entry.enter((erred.key,), erred.attribute, erred.value, "operator_1")
    double_entry.enter(
        (erred.key,), erred.attribute, erred.true_value, "operator_2"
    )
    log = CertificationLog()
    for pair in double_entry.discrepancies():
        print(
            f"double entry discrepancy on {pair.subject} {pair.field_name}: "
            f"{pair.first!r} vs {pair.second!r} -> rejected pending review"
        )
        log.reject("customer", pair.subject, "dq_admin", "double-entry mismatch")
    print(
        f"certification status of {erred.key!r}: "
        f"{log.status_of('customer', (erred.key,))}"
    )
    print()

    # -- 6. duplicate detection --------------------------------------------------------------
    records = relation.values_relation().to_dicts()
    # Plant two sloppy re-entries of existing customers.
    records.append({**records[0], "co_name": records[0]["co_name"] + " Inc"})
    typo_name = records[1]["co_name"]
    typo_name = typo_name[:-2] + typo_name[-1] + typo_name[-2]  # keying swap
    records.append({**records[1], "co_name": typo_name})
    from repro.linkage.comparators import numeric_closeness

    finder = DuplicateFinder(
        FellegiSunterModel(
            [
                FieldModel("co_name", jaro_winkler, m=0.9, u=0.02,
                           agree_threshold=0.93),
                FieldModel("address", jaro_winkler, m=0.9, u=0.02,
                           agree_threshold=0.93),
                FieldModel(
                    "employees",
                    lambda a, b: numeric_closeness(a, b, tolerance=0.05),
                    m=0.85,
                    u=0.02,
                ),
            ],
            upper_threshold=12.0,
        )
    )
    clusters = finder.duplicate_clusters(records)
    print(f"duplicate clusters found: {len(clusters)}")
    for cluster in clusters:
        names = [records[i]["co_name"] for i in sorted(cluster)]
        print(f"  cluster: {names}")


if __name__ == "__main__":
    main()
